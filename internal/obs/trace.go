// Simulated-time trace exporter. Events stream out in Chrome
// trace-event JSON (the "JSON object format": {"traceEvents":[...]}),
// loadable in Perfetto / chrome://tracing. Timestamps and durations are
// microseconds (the format's unit) carrying the simulator's nanosecond
// precision as three fixed decimals, so formatting is pure integer math
// and byte-deterministic.
//
// Layout: pid 1 is the fleet — one tid per server carrying task
// lifecycle spans ("wait" arrival→first-run, "exec" first-run→finish),
// tick marks, and scale events; pid 0 tid 0 is the router (watermark
// broadcasts); pid 1000+server are optional per-core lanes (one tid per
// core) with run segments, off by default because their volume is
// O(events). Concurrent tasks on one server render as overlapping
// slices in a single lane, which Perfetto nests — adequate for "when
// did the cold start stall this lane" questions without an id per task.
//
// Determinism: every event line's bytes depend only on simulated state,
// never on shard count or goroutine interleaving; the writer mutex
// keeps lines atomic. Each event line ends with a comma and the footer
// is a fixed metadata event, so the same run at any shard count
// produces the same multiset of lines — sort and compare.

package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"

	"github.com/faassched/faassched/internal/ghost"
	"github.com/faassched/faassched/internal/metrics"
	"github.com/faassched/faassched/internal/simkern"
)

// TraceConfig tunes what the Tracer emits.
type TraceConfig struct {
	// Every keeps only every Nth task's lifecycle spans, selected by
	// invocation ID so sampling is shard- and schedule-independent.
	// Values <= 1 keep all tasks. Tick, scale, and watermark marks are
	// never sampled out.
	Every int
	// Funcs restricts task spans to invocations with these labels
	// (funcKeys). Empty keeps all labels.
	Funcs []string
	// Segments additionally emits per-core run segments (pid
	// 1000+server, one tid per core). High volume: one span per
	// completion or preemption.
	Segments bool
	// BufBytes sizes the buffered writer; <= 0 means 1 MiB. The buffer
	// is the only memory the tracer holds — events stream straight out.
	BufBytes int
}

// Tracer streams trace events to one writer. Safe for concurrent use;
// all methods are nil-receiver-safe no-ops so call sites can hold a nil
// *Tracer when tracing is off.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	buf    []byte
	n      int64
	every  uint64
	funcs  map[string]struct{}
	segs   bool
	err    error
	closed bool
}

// NewTracer starts a trace stream on w (the caller owns closing any
// underlying file after Close).
func NewTracer(w io.Writer, cfg TraceConfig) *Tracer {
	size := cfg.BufBytes
	if size <= 0 {
		size = 1 << 20
	}
	t := &Tracer{
		w:     bufio.NewWriterSize(w, size),
		buf:   make([]byte, 0, 256),
		every: uint64(max(cfg.Every, 1)),
		segs:  cfg.Segments,
	}
	if len(cfg.Funcs) > 0 {
		t.funcs = make(map[string]struct{}, len(cfg.Funcs))
		for _, f := range cfg.Funcs {
			t.funcs[f] = struct{}{}
		}
	}
	if _, err := t.w.WriteString("{\"traceEvents\":[\n"); err != nil {
		t.err = err
	}
	return t
}

// Close terminates the JSON document and flushes. It does not close the
// underlying writer. Returns the first write error, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	// The fixed metadata event absorbs the no-trailing-comma slot so
	// every real event line is uniformly comma-terminated.
	t.w.WriteString("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"fleet\"}}\n]}\n")
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Events returns how many events have been emitted (header/footer
// excluded).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// keepTask applies every-Nth / funcKey sampling to task-level events.
func (t *Tracer) keepTask(id uint64, label string) bool {
	if t.every > 1 && id%t.every != 0 {
		return false
	}
	if t.funcs != nil {
		if _, ok := t.funcs[label]; !ok {
			return false
		}
	}
	return true
}

// appendUS appends d as microseconds with three decimals (nanosecond
// precision), clamping negatives to zero.
func appendUS(b []byte, d time.Duration) []byte {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	b = append(b, '.', byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// emit writes one comma-terminated event line built by f into scratch.
func (t *Tracer) emit(f func(b []byte) []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	t.buf = f(t.buf[:0])
	t.buf = append(t.buf, ',', '\n')
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
	}
	t.n++
}

func appendSpanHead(b []byte, name string, pid, tid int, ts, dur time.Duration) []byte {
	b = append(b, "{\"name\":"...)
	b = strconv.AppendQuote(b, name)
	b = append(b, ",\"ph\":\"X\",\"pid\":"...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, ",\"tid\":"...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, ",\"ts\":"...)
	b = appendUS(b, ts)
	b = append(b, ",\"dur\":"...)
	b = appendUS(b, dur)
	return b
}

func appendInstantHead(b []byte, name, scope string, pid, tid int, ts time.Duration) []byte {
	b = append(b, "{\"name\":"...)
	b = strconv.AppendQuote(b, name)
	b = append(b, ",\"ph\":\"i\",\"s\":"...)
	b = strconv.AppendQuote(b, scope)
	b = append(b, ",\"pid\":"...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, ",\"tid\":"...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, ",\"ts\":"...)
	b = appendUS(b, ts)
	return b
}

// TaskRecord emits one retired invocation's lifecycle spans on the
// server's fleet lane: "wait" (arrival→first run) and "exec" (first
// run→finish, cold-start latency broken out in args), or a "failed"
// instant for invocations that never ran. Subject to sampling.
func (t *Tracer) TaskRecord(server int, r metrics.Record) {
	if t == nil || !t.keepTask(r.ID, r.Label) {
		return
	}
	if r.Failed {
		t.emit(func(b []byte) []byte {
			b = appendInstantHead(b, "failed", "t", 1, server, 0)
			b = append(b, ",\"cat\":\"task\",\"args\":{\"id\":"...)
			b = strconv.AppendUint(b, r.ID, 10)
			b = append(b, ",\"label\":"...)
			b = strconv.AppendQuote(b, r.Label)
			b = append(b, "}}"...)
			return b
		})
		return
	}
	t.emit(func(b []byte) []byte {
		b = appendSpanHead(b, "wait", 1, server, r.Arrival, r.Response())
		b = append(b, ",\"cat\":\"task\",\"args\":{\"id\":"...)
		b = strconv.AppendUint(b, r.ID, 10)
		b = append(b, "}}"...)
		return b
	})
	t.emit(func(b []byte) []byte {
		b = appendSpanHead(b, "exec", 1, server, r.FirstRun, r.Execution())
		b = append(b, ",\"cat\":\"task\",\"args\":{\"id\":"...)
		b = strconv.AppendUint(b, r.ID, 10)
		b = append(b, ",\"label\":"...)
		b = strconv.AppendQuote(b, r.Label)
		b = append(b, ",\"preempt\":"...)
		b = strconv.AppendInt(b, int64(r.Preemptions), 10)
		if r.ColdStart > 0 {
			b = append(b, ",\"cold_us\":"...)
			b = appendUS(b, r.ColdStart)
		}
		b = append(b, "}}"...)
		return b
	})
}

// TaskSet emits lifecycle spans for every record in s (materialized
// dataflow, where records arrive as an end-of-run set).
func (t *Tracer) TaskSet(server int, s *metrics.Set) {
	if t == nil {
		return
	}
	for _, r := range s.Records {
		t.TaskRecord(server, r)
	}
}

// TickMark emits an agent-tick instant on the server's fleet lane;
// elided counts the grid boundaries the horizon pump proved no-op since
// the previous fire. Never sampled out.
func (t *Tracer) TickMark(server int, at time.Duration, elided int64) {
	if t == nil {
		return
	}
	t.emit(func(b []byte) []byte {
		b = appendInstantHead(b, "tick", "t", 1, server, at)
		b = append(b, ",\"cat\":\"ghost\",\"args\":{\"elided\":"...)
		b = strconv.AppendInt(b, elided, 10)
		b = append(b, "}}"...)
		return b
	})
}

// ScaleEvent emits an autoscaler lifecycle instant (kind is launch/
// ready/drain/retire) on the server's fleet lane; active is the live
// fleet size after the event.
func (t *Tracer) ScaleEvent(kind string, server int, at time.Duration, active int) {
	if t == nil {
		return
	}
	t.emit(func(b []byte) []byte {
		b = appendInstantHead(b, "scale:"+kind, "p", 1, server, at)
		b = append(b, ",\"cat\":\"autoscale\",\"args\":{\"active\":"...)
		b = strconv.AppendInt(b, int64(active), 10)
		b = append(b, "}}"...)
		return b
	})
}

// FaultEvent emits a fault-plan instant (kind is crash/recover) on the
// server's fleet lane. Crash/recover marks come from the single-threaded
// routing layer, so the stream is identical at any shard count.
func (t *Tracer) FaultEvent(kind string, server int, at time.Duration) {
	if t == nil {
		return
	}
	t.emit(func(b []byte) []byte {
		b = appendInstantHead(b, "fault:"+kind, "p", 1, server, at)
		b = append(b, ",\"cat\":\"faults\"}"...)
		return b
	})
}

// Watermark emits a router watermark-broadcast instant (sharded
// lockstep replay); routed is the arrivals routed so far. Emitted by
// the router once per broadcast, so the stream is identical at any
// shard count.
func (t *Tracer) Watermark(at time.Duration, routed int64) {
	if t == nil {
		return
	}
	t.emit(func(b []byte) []byte {
		b = appendInstantHead(b, "watermark", "g", 0, 0, at)
		b = append(b, ",\"cat\":\"router\",\"args\":{\"routed\":"...)
		b = strconv.AppendInt(b, routed, 10)
		b = append(b, "}}"...)
		return b
	})
}

// Span emits a generic wall-clock span (CLI telemetry, e.g. per-
// experiment timing in faasbench).
func (t *Tracer) Span(name string, pid, tid int, start, dur time.Duration) {
	if t == nil {
		return
	}
	t.emit(func(b []byte) []byte {
		b = appendSpanHead(b, name, pid, tid, start, dur)
		b = append(b, ",\"cat\":\"wall\"}"...)
		return b
	})
}

// GhostProbe adapts the tracer to ghost.Config.Probe for one server's
// enclave. Returns a nil interface when the tracer is nil so the
// enclave's disabled path stays a plain nil check.
func (t *Tracer) GhostProbe(server int) ghost.Probe {
	if t == nil {
		return nil
	}
	return ghostProbe{t: t, server: server}
}

type ghostProbe struct {
	t      *Tracer
	server int
}

func (p ghostProbe) TickFired(now time.Duration, elided int64) {
	p.t.TickMark(p.server, now, elided)
}

// KernelProbe adapts the tracer to simkern.Config.Probe for one
// server's kernel, emitting per-core run segments. Returns nil unless
// TraceConfig.Segments was set.
func (t *Tracer) KernelProbe(server int) simkern.Probe {
	if t == nil || !t.segs {
		return nil
	}
	return kernProbe{t: t, server: server}
}

type kernProbe struct {
	t      *Tracer
	server int
}

func (p kernProbe) SegmentEnd(task *simkern.Task, core simkern.CoreID, start, end time.Duration, done bool) {
	id := uint64(task.ID)
	if !p.t.keepTask(id, task.Label) {
		return
	}
	if end < start {
		end = start
	}
	p.t.emit(func(b []byte) []byte {
		b = appendSpanHead(b, task.Label, 1000+p.server, int(core), start, end-start)
		b = append(b, ",\"cat\":\"core\",\"args\":{\"id\":"...)
		b = strconv.AppendUint(b, id, 10)
		if done {
			b = append(b, ",\"done\":1}}"...)
		} else {
			b = append(b, ",\"done\":0}}"...)
		}
		return b
	})
}
