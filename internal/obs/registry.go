// Unified counter/gauge registry. Counters are raw int64 slots behind
// stable pointers — registration allocates once, after which Add/Inc are
// plain field increments (no map lookup, no interface call, no
// allocation), cheap enough for control-thread hot loops. Names are
// dotted subsystem.metric strings; the constants below are the canonical
// set so every engine (flat fleet, sharded replay, autoscaler,
// single-machine) reports the same totals under the same keys.

package obs

import (
	"fmt"
	"sort"

	"github.com/faassched/faassched/internal/ghost"
)

// Canonical counter/gauge names. Subsystem prefixes: ghost.* (enclave
// delegation), kern.* (event kernel), coldstart.* (warm-instance model),
// sharded.* (lockstep replay router), autoscale.* (elastic fleet),
// fleet.* (routing layer).
const (
	CGhostDelivered  = "ghost.msgs_delivered"
	CGhostCommits    = "ghost.commits"
	CGhostFailed     = "ghost.commit_failures"
	CGhostTicks      = "ghost.ticks_fired"
	CGhostElided     = "ghost.ticks_elided"
	CGhostMigrations = "ghost.migrations"
	CKernEvents      = "kern.events_scheduled"
	CColdWarmHits    = "coldstart.warm_hits"
	CColdMisses      = "coldstart.cold_misses"
	CInvocations     = "fleet.invocations"
	CWatermarks      = "sharded.watermarks"
	CScaleLaunches   = "autoscale.launches"
	CScaleReady      = "autoscale.ready"
	CScaleDrains     = "autoscale.drains"
	CScaleRetires    = "autoscale.retires"
	CScaleCrashes    = "autoscale.crashes"
	GServerSeconds   = "autoscale.server_seconds"
	CFaultCrashes    = "faults.crashes"
	CFaultKills      = "faults.kills"
	CFaultRetries    = "faults.retries"
	CFaultGiveUps    = "faults.giveups"
	CFaultStragglers = "faults.straggler_windows"
	CFcLaunchFails   = "firecracker.launch_failures"
)

// Counter is a named int64 tally. Not goroutine-safe: a counter belongs
// to its registry's owning thread.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a named float64 accumulator, merged across shards by
// summation in MergeRegistryTree's fixed pairwise order.
type Gauge struct {
	name string
	v    float64
}

// Add accumulates d into the gauge.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry holds named counters and gauges. Registration (Counter/Gauge)
// finds-or-creates by name; a name is permanently one kind — registering
// it as the other panics, since a silent coercion would corrupt merges.
// Not goroutine-safe; see the package comment for the sharding model.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter registered under name, creating it at zero
// on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it at zero on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// AddGhostStats folds one enclave's delegation tallies into the
// canonical ghost.* counters.
func (r *Registry) AddGhostStats(s ghost.Stats) {
	r.Counter(CGhostDelivered).Add(s.Delivered)
	r.Counter(CGhostCommits).Add(s.Commits)
	r.Counter(CGhostFailed).Add(s.Failed)
	r.Counter(CGhostTicks).Add(s.Ticks)
	r.Counter(CGhostElided).Add(s.TicksElided)
	r.Counter(CGhostMigrations).Add(s.Migrations)
}

// Merge sums src's counters and gauges into r, iterating names in
// sorted order so float gauge sums fold deterministically (int64
// counters would tolerate any order; gauges would not). Cross-kind name
// collisions panic via Counter/Gauge.
func (r *Registry) Merge(src *Registry) {
	if src == nil {
		return
	}
	for _, name := range sortedKeys(src.counters) {
		r.Counter(name).Add(src.counters[name].v)
	}
	for _, name := range sortedKeys(src.gauges) {
		r.Gauge(name).Add(src.gauges[name].v)
	}
}

func sortedKeys[V any](m map[string]*V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MergeRegistryTree folds regs into regs[0] pairwise in index order —
// stride 1 merges regs[i+1] into regs[i] for even i, then stride 2, and
// so on, exactly the metrics.MergeTree discipline — so gauge float sums
// are bit-for-bit reproducible for a given shard partition regardless of
// worker scheduling. Nil entries are skipped; the slice is clobbered.
// Returns the surviving root, or nil when regs is empty or all-nil.
func MergeRegistryTree(regs []*Registry) *Registry {
	for stride := 1; stride < len(regs); stride *= 2 {
		for i := 0; i+stride < len(regs); i += 2 * stride {
			if regs[i] == nil {
				regs[i] = regs[i+stride]
				regs[i+stride] = nil
				continue
			}
			regs[i].Merge(regs[i+stride])
			regs[i+stride] = nil
		}
	}
	if len(regs) == 0 {
		return nil
	}
	return regs[0]
}

// Dump flattens the registry into a name→value map for JSON run reports
// (encoding/json emits map keys sorted, so dumps are deterministic).
func (r *Registry) Dump() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.v)
	}
	for name, g := range r.gauges {
		out[name] = g.v
	}
	return out
}

// Metric is one registry entry in a sorted Snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Snapshot returns all entries sorted by name, for deterministic text
// output.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: float64(c.v)})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Value: g.v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
