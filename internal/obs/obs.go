// Package obs is the simulator's observability layer: a unified
// counter/gauge registry (replacing per-subsystem ad-hoc tallies), a
// simulated-time Chrome trace-event exporter, and run-telemetry
// plumbing (progress heartbeats, run reports, peak-RSS probes) for the
// CLIs.
//
// The governing invariant is that observation is inert: enabling any of
// it must not change a single simulated decision (golden digests are
// identical with tracing on), and leaving it disabled must cost nothing
// on the hot event/dispatch paths — every hook in simkern/ghost/cluster/
// autoscale sits behind a nil check on a pointer that is nil by default,
// so the disabled path is one predictable branch and zero allocations.
//
// Concurrency model: the Registry is owned by a single control thread
// (router, merge loop, autoscale controller); parallel shard workers get
// their own Registry each, merged afterwards in shard-index order via
// MergeRegistryTree — the same pairwise discipline as metrics.MergeTree,
// so float gauge sums are bit-stable at any shard count. The Tracer is
// internally locked (workers emit concurrently); Progress is atomics.
package obs

import "github.com/faassched/faassched/internal/metrics"

// Obs bundles the three observation facilities. A nil *Obs (or a nil
// field) disables the corresponding facility; all accessors are
// nil-receiver-safe so config structs can embed a single optional
// pointer.
type Obs struct {
	// Counters receives the run's counter/gauge totals. Updated only
	// from control threads; see the package comment.
	Counters *Registry
	// Trace receives simulated-time trace events (may be shared across
	// goroutines; the Tracer locks internally).
	Trace *Tracer
	// Prog receives watermark/routed/retired progress atomics for
	// heartbeat displays.
	Prog *Progress
}

// Registry returns the counter registry, or nil when disabled.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Counters
}

// Tracer returns the trace exporter, or nil when disabled.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Progress returns the progress atomics, or nil when disabled.
func (o *Obs) Progress() *Progress {
	if o == nil {
		return nil
	}
	return o.Prog
}

// WrapSink taps a per-server record sink for tracing and progress
// accounting. It returns inner unchanged when neither is enabled, so the
// disabled path adds no indirection to record retirement.
func (o *Obs) WrapSink(server int, inner metrics.Sink) metrics.Sink {
	tr, pg := o.Tracer(), o.Progress()
	if tr == nil && pg == nil {
		return inner
	}
	return &sinkTap{inner: inner, tr: tr, pg: pg, server: server}
}

type sinkTap struct {
	inner  metrics.Sink
	tr     *Tracer
	pg     *Progress
	server int
}

func (s *sinkTap) Push(r metrics.Record) {
	if s.tr != nil {
		s.tr.TaskRecord(s.server, r)
	}
	if s.pg != nil {
		s.pg.Done.Add(1)
	}
	if s.inner != nil {
		s.inner.Push(r)
	}
}
