package obs

import (
	"reflect"
	"testing"
	"time"

	"github.com/faassched/faassched/internal/ghost"
)

func TestRegistryFindOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Add(3)
	c.Inc()
	if got := r.Counter("a.b").Value(); got != 4 {
		t.Fatalf("counter a.b = %d, want 4", got)
	}
	g := r.Gauge("a.g")
	g.Add(1.5)
	if got := r.Gauge("a.g").Value(); got != 1.5 {
		t.Fatalf("gauge a.g = %v, want 1.5", got)
	}
}

func TestRegistryCrossKindPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestAddGhostStats(t *testing.T) {
	r := NewRegistry()
	r.AddGhostStats(ghost.Stats{Delivered: 1, Commits: 2, Failed: 3, Ticks: 4, TicksElided: 5, Migrations: 6})
	r.AddGhostStats(ghost.Stats{Delivered: 10, Ticks: 10})
	want := map[string]int64{
		CGhostDelivered: 11, CGhostCommits: 2, CGhostFailed: 3,
		CGhostTicks: 14, CGhostElided: 5, CGhostMigrations: 6,
	}
	for name, v := range want {
		if got := r.Counter(name).Value(); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestMergeRegistryTree checks that the pairwise fold preserves totals at
// every width, skips nil entries, and produces identical gauge bytes
// regardless of how the same shard values would have been interleaved by
// worker scheduling (the fold order is fixed by index).
func TestMergeRegistryTree(t *testing.T) {
	for width := 0; width <= 9; width++ {
		regs := make([]*Registry, width)
		var wantC int64
		var wantG float64
		for i := range regs {
			if i == 3 && width > 3 {
				continue // nil entry: a shard with counting off
			}
			r := NewRegistry()
			r.Counter("c").Add(int64(i + 1))
			r.Gauge("g").Add(0.1 * float64(i+1))
			regs[i] = r
			wantC += int64(i + 1)
		}
		vals := make([]float64, width)
		for i := range vals {
			if i == 3 && width > 3 {
				continue
			}
			vals[i] = 0.1 * float64(i+1)
		}
		root := MergeRegistryTree(regs)
		if width == 0 {
			if root != nil {
				t.Fatalf("width 0: root = %v, want nil", root)
			}
			continue
		}
		if got := root.Counter("c").Value(); got != wantC {
			t.Errorf("width %d: counter total %d, want %d", width, got, wantC)
		}
		for _, v := range vals {
			wantG += v
		}
		// Gauge totals agree with the linear sum up to float error; exact
		// byte stability is pinned by the double-run check below.
		if got := root.Gauge("g").Value(); got < wantG-1e-9 || got > wantG+1e-9 {
			t.Errorf("width %d: gauge total %v, want ~%v", width, got, wantG)
		}
	}
}

// TestMergeTreeDeterministic pins bit-identical gauge folds: merging the
// same per-shard values twice yields the same float bits.
func TestMergeTreeDeterministic(t *testing.T) {
	build := func() []*Registry {
		regs := make([]*Registry, 7)
		for i := range regs {
			r := NewRegistry()
			r.Gauge("g").Add(0.1 * float64(i+1))
			r.Gauge("h").Add(1.0 / float64(i+3))
			regs[i] = r
		}
		return regs
	}
	a := MergeRegistryTree(build())
	b := MergeRegistryTree(build())
	if a.Gauge("g").Value() != b.Gauge("g").Value() || a.Gauge("h").Value() != b.Gauge("h").Value() {
		t.Fatal("tree merge of identical inputs produced different float bits")
	}
}

func TestDumpAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("c").Add(3.5)
	if got := r.Dump(); !reflect.DeepEqual(got, map[string]float64{"a": 1, "b": 2, "c": 3.5}) {
		t.Errorf("Dump = %v", got)
	}
	snap := r.Snapshot()
	want := []Metric{{"a", 1}, {"b", 2}, {"c", 3.5}}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("Snapshot = %v, want %v", snap, want)
	}
	var nilReg *Registry
	if nilReg.Dump() != nil || nilReg.Snapshot() != nil {
		t.Error("nil registry Dump/Snapshot should be nil")
	}
}

func TestProgressLive(t *testing.T) {
	var p Progress
	p.Routed.Add(10)
	p.Done.Add(4)
	if got := p.Live(); got != 6 {
		t.Fatalf("Live = %d, want 6", got)
	}
	if got := (*Progress)(nil).Live(); got != 0 {
		t.Fatalf("nil Live = %d, want 0", got)
	}
}

func TestRunReportFinalize(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(CKernEvents).Add(500)
	rep := &RunReport{
		Tool: "test", Mode: "flat", Events: 500,
		PerShard: []ShardUtil{{Shard: 0, Events: 100}, {Shard: 1, Events: 400}},
	}
	rep.Finalize(reg, 2*time.Second)
	if rep.EventsPerSec != 250 {
		t.Errorf("EventsPerSec = %v, want 250", rep.EventsPerSec)
	}
	if rep.PeakRSSMB <= 0 {
		t.Errorf("PeakRSSMB = %v, want > 0", rep.PeakRSSMB)
	}
	if rep.Counters[CKernEvents] != 500 {
		t.Errorf("counter dump missing %s: %v", CKernEvents, rep.Counters)
	}
	if rep.PerShard[1].EventShare != 0.8 {
		t.Errorf("shard 1 EventShare = %v, want 0.8", rep.PerShard[1].EventShare)
	}
	// Counters key must exist even with counting disabled.
	rep2 := &RunReport{}
	rep2.Finalize(nil, time.Second)
	if rep2.Counters == nil {
		t.Error("Finalize(nil) left Counters nil")
	}
}
