package faassched

// Tick-elision equivalence oracle (DESIGN.md §9): the horizon pump must be
// observationally identical to the naive every-boundary pump it elides.
// ghost.Config.ForceTickPump is the escape hatch that forces the naive
// pump, so each (seed × scheduler × machine) cell runs three ways —
// materialized-naive (the reference), materialized-elided, and
// streamed-elided — and all three must produce identical per-invocation
// record streams. TestGoldenDigests separately pins the same claim against
// the committed digests; this oracle adds randomized workloads, the
// adaptive/rightsizing hybrid (whose monitor mutates state from policy
// timers), and a host-interference machine (where the FIFO time-limit
// horizon is conservative and must converge through no-op ticks).

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/faassched/faassched/internal/core"
	"github.com/faassched/faassched/internal/ghost"
	"github.com/faassched/faassched/internal/metrics"
	"github.com/faassched/faassched/internal/policy/cfs"
	"github.com/faassched/faassched/internal/policy/fifo"
	"github.com/faassched/faassched/internal/policy/las"
	"github.com/faassched/faassched/internal/policy/rr"
	"github.com/faassched/faassched/internal/policy/shinjuku"
	"github.com/faassched/faassched/internal/simkern"
	"github.com/faassched/faassched/internal/simrun"
	"github.com/faassched/faassched/internal/workload"
)

// oracleRecordsDiff compares two record streams field by field and returns
// a description of the first divergence ("" when identical).
func oracleRecordsDiff(a, b []metrics.Record) string {
	if len(a) != len(b) {
		return fmt.Sprintf("record count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("record %d: %+v != %+v", i, a[i], b[i])
		}
	}
	return ""
}

// oracleMaterialized runs invs on one machine with pre-seeded tasks and
// returns the collected records plus the enclave's tick counters.
func oracleMaterialized(t *testing.T, kcfg simkern.Config, policy ghost.Policy, invs []Invocation, force bool) ([]metrics.Record, ghost.Stats) {
	t.Helper()
	k, err := simkern.New(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ghost.NewEnclave(k, policy, ghost.Config{ForceTickPump: force})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range workload.Tasks(invs) {
		if err := k.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if n := k.Outstanding(); n != 0 {
		t.Fatalf("%d tasks unfinished under %s", n, policy.Name())
	}
	return metrics.Collect(k).Records, enc.Stats()
}

// oracleStreamed runs invs through lazy admission + sink retirement and
// returns the records (sorted back to id order) plus the tick counters.
func oracleStreamed(t *testing.T, kcfg simkern.Config, policy ghost.Policy, invs []Invocation, force bool) ([]metrics.Record, ghost.Stats) {
	t.Helper()
	var set metrics.Set
	var st ghost.Stats
	_, err := simrun.ExecStreamPooled(kcfg, policy, ghost.Config{ForceTickPump: force},
		workload.SliceSource(invs), simrun.StreamConfig{Sink: &set, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(set.Records, func(i, j int) bool { return set.Records[i].ID < set.Records[j].ID })
	return set.Records, st
}

func TestTickElisionOracle(t *testing.T) {
	seeds := []int64{1, 7, 42}
	maxInvs := 400
	if testing.Short() {
		seeds = seeds[:2]
		maxInvs = 200
	}

	schedulers := []struct {
		name string
		mk   func() ghost.Policy
	}{
		{"cfs", func() ghost.Policy { return cfs.New(cfs.Params{}) }},
		// fifo+quantum and rr elide through the fifo.Engine quantum-expiry
		// horizon; their expiries are pure wall time, so interference
		// coverage only exercises conservatism, never lateness.
		{"fifo+quantum", func() ghost.Policy {
			return fifo.New(fifo.Config{Quantum: 100 * time.Millisecond})
		}},
		{"rr", func() ghost.Policy { return rr.New(rr.Config{}) }},
		// las elides through an attained-service threshold horizon: under
		// interference consumption lags wall time, so the horizon is
		// conservative and must converge through no-op ticks. shinjuku's
		// segment-start + quantum horizon is pure wall time like rr's.
		{"las", func() ghost.Policy { return las.New(las.Config{}) }},
		{"shinjuku", func() ghost.Policy { return shinjuku.New(shinjuku.Config{}) }},
		{"hybrid", func() ghost.Policy {
			return core.New(core.Config{FIFOCores: 4})
		}},
		// The adaptive + rightsizing hybrid covers the policy-timer paths:
		// the monitor migrates cores and the limit moves with completions,
		// both of which must re-arm the horizon via Env.InvalidateHorizon.
		// A short limit and aggressive rightsizing force both mechanisms on
		// this small workload.
		{"hybrid+dyn", func() ghost.Policy {
			return core.New(core.Config{
				FIFOCores: 4,
				TimeLimit: core.TimeLimitConfig{Static: 50 * time.Millisecond, Percentile: 0.75},
				Rightsize: core.RightsizeConfig{Enabled: true, Threshold: 0.05, Cooldown: 500 * time.Millisecond},
			})
		}},
	}

	machines := []struct {
		name string
		kcfg func() simkern.Config
	}{
		{"clean", func() simkern.Config { return simkern.DefaultConfig(8) }},
		// Host interference makes the hybrid's FIFO time-limit horizon a
		// lower bound rather than exact: the pump must converge through
		// conservative no-op ticks without ever firing late.
		{"interference", func() simkern.Config {
			kcfg := simkern.DefaultConfig(8)
			kcfg.Interference = simkern.PeriodicInterference{Period: 10 * time.Millisecond, Steal: time.Millisecond}
			return kcfg
		}},
	}

	for _, seed := range seeds {
		invs, err := BuildWorkload(WorkloadSpec{Seed: seed, Minutes: 1, MaxInvocations: maxInvs})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range machines {
			for _, s := range schedulers {
				if m.name == "interference" && s.name == "cfs" {
					continue // CFS horizons are wall-clock exact; covered by clean
				}
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, m.name, s.name), func(t *testing.T) {
					naive, naiveStats := oracleMaterialized(t, m.kcfg(), s.mk(), invs, true)
					elided, elidedStats := oracleMaterialized(t, m.kcfg(), s.mk(), invs, false)
					if d := oracleRecordsDiff(naive, elided); d != "" {
						t.Fatalf("elided pump diverges from naive pump: %s", d)
					}
					streamed, _ := oracleStreamed(t, m.kcfg(), s.mk(), invs, false)
					if d := oracleRecordsDiff(naive, streamed); d != "" {
						t.Fatalf("streamed elided run diverges from naive pump: %s", d)
					}
					// Guard against a vacuous pass: the naive pump must
					// have ticked, and the elided pump must have skipped
					// boundaries while firing at most as many ticks.
					if naiveStats.Ticks == 0 {
						t.Fatal("naive pump fired no ticks; oracle proves nothing")
					}
					if naiveStats.TicksElided != 0 {
						t.Fatalf("naive pump reported %d elided ticks", naiveStats.TicksElided)
					}
					if elidedStats.TicksElided == 0 {
						t.Fatalf("elided pump skipped no boundaries (fired %d)", elidedStats.Ticks)
					}
					if elidedStats.Ticks > naiveStats.Ticks {
						t.Fatalf("elided pump fired %d ticks, naive only %d", elidedStats.Ticks, naiveStats.Ticks)
					}
				})
			}
		}
	}
}
