// Adaptive mechanisms: compare the static hybrid against the full system
// with dynamic preemption time limits (p95 of the last 100 task
// durations) and CPU-group rightsizing — the paper's §IV-B provider-side
// machinery, exercised through the public API.
package main

import (
	"fmt"
	"log"

	"github.com/faassched/faassched"
)

func main() {
	invs, err := faassched.BuildWorkload(faassched.WorkloadSpec{
		Minutes:        4,
		MaxInvocations: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d invocations over ~4 minutes\n\n", len(invs))

	static, err := faassched.Simulate(faassched.Options{
		Cores:     8,
		Scheduler: faassched.SchedulerHybrid,
	}, invs)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := faassched.Simulate(faassched.Options{
		Cores:     8,
		Scheduler: faassched.SchedulerHybridDyn,
	}, invs)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, r *faassched.Result) {
		exec, err := r.CDF(faassched.Execution)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := r.CDF(faassched.Response)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s exec p99=%9.1fms resp p99=%9.1fms makespan=%-10s cost=$%.6f\n",
			name, exec.Quantile(0.99), resp.Quantile(0.99), r.Makespan.Round(1e9), r.CostUSD())
	}
	report("hybrid (static 1633ms)", static)
	report("hybrid+dyn (p95, RS)", dynamic)

	fmt.Println("\nThe dynamic variant re-derives the FIFO preemption limit from the")
	fmt.Println("recent-100-durations window (p95, per the paper's best Fig 15")
	fmt.Println("setting) and migrates cores between the FIFO and CFS groups when")
	fmt.Println("their windowed utilizations diverge, keeping both groups busy.")
	fmt.Println("Run `faasbench -experiment fig16,fig17,fig19` for the full")
	fmt.Println("utilization and time-limit timelines.")
}
