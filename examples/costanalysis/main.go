// Cost analysis: reproduce the paper's Figs 1 and 20 through the public
// API — what the same workload costs under each scheduler at every AWS
// Lambda memory size, and what the provider's scheduler choice does to
// the customer's bill.
package main

import (
	"fmt"
	"log"

	"github.com/faassched/faassched"
)

var memorySizesMB = []int{128, 512, 1024, 2048, 4096, 10240}

func main() {
	invs, err := faassched.BuildWorkload(faassched.WorkloadSpec{
		Minutes:        2,
		MaxInvocations: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []faassched.Scheduler{
		faassched.SchedulerFIFO,
		faassched.SchedulerCFS,
		faassched.SchedulerHybrid,
	}
	results := map[faassched.Scheduler]*faassched.Result{}
	for _, s := range schedulers {
		res, err := faassched.Simulate(faassched.Options{Cores: 8, Scheduler: s}, invs)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = res
	}

	fmt.Printf("%-8s", "mem_mb")
	for _, s := range schedulers {
		fmt.Printf("%14s", s)
	}
	fmt.Printf("%12s\n", "cfs/hybrid")
	for _, mem := range memorySizesMB {
		fmt.Printf("%-8d", mem)
		for _, s := range schedulers {
			fmt.Printf("%14.6f", results[s].CostAtUniformMemoryUSD(mem))
		}
		ratio := results[faassched.SchedulerCFS].CostAtUniformMemoryUSD(mem) /
			results[faassched.SchedulerHybrid].CostAtUniformMemoryUSD(mem)
		fmt.Printf("%11.1fx\n", ratio)
	}

	fmt.Println("\nBilling is wall-clock execution time x a per-ms price proportional")
	fmt.Println("to memory size. Because CFS stretches execution times under high")
	fmt.Println("concurrency, the same workload costs a multiple under CFS at every")
	fmt.Println("memory size (the paper measures >10x).")
}
