// Firecracker mode: every invocation boots a simulated microVM — a VMM
// boot thread, a vCPU thread running the guest work, and an IO thread,
// all scheduled by the selected policy — against a finite server memory
// budget. Reproduces the paper's §VI-E observations: the hybrid still
// wins under microVMs, and memory caps how many VMs a server can hold
// (the paper's 2,952-VM wall).
package main

import (
	"fmt"
	"log"

	"github.com/faassched/faassched"
)

func main() {
	invs, err := faassched.BuildWorkload(faassched.WorkloadSpec{
		Minutes:        4,
		MaxInvocations: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Pin the guests to the minimal 128 MB size: like the paper's setup,
	// memory — not compute — is what walls off the microVM count.
	for i := range invs {
		invs[i].MemMB = 128
	}

	// A server sized to hold ~90% of the attempted microVMs: the rest must
	// fail to launch, the paper's "horizontal line" in Fig 21.
	perVM := 128 + 48 // guest size + VMM overhead, MB
	serverMB := perVM * len(invs) * 9 / 10

	for _, sched := range []faassched.Scheduler{
		faassched.SchedulerCFS,
		faassched.SchedulerHybrid,
	} {
		res, err := faassched.Simulate(faassched.Options{
			Cores:       8,
			Scheduler:   sched,
			Firecracker: true,
			ServerMemMB: serverMB,
		}, invs)
		if err != nil {
			log.Fatal(err)
		}
		exec, err := res.CDF(faassched.Execution)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s launched=%4d failed=%4d | exec p50=%8.1fms p99=%10.1fms | cost(1GB)=$%.6f\n",
			sched, res.LaunchedVMs, res.FailedVMs,
			exec.Quantile(0.5), exec.Quantile(0.99), res.CostAtUniformMemoryUSD(1024))
	}

	fmt.Println("\nEach microVM is three schedulable threads, so the scheduler sees")
	fmt.Println("~3x the tasks, and launch failures appear identically under every")
	fmt.Println("policy (memory admission precedes scheduling). At this moderate")
	fmt.Println("load the schedulers converge; the paper's ~10% hybrid saving shows")
	fmt.Println("up at fleet scale — run `faasbench -experiment fig21,fig22`.")
}
