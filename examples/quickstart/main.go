// Quickstart: synthesize an Azure-calibrated serverless workload, run it
// under the Linux-default CFS and under the paper's hybrid FIFO+CFS
// scheduler, and see why the paper's title says the scheduler choice
// costs money.
package main

import (
	"fmt"
	"log"

	"github.com/faassched/faassched"
)

func main() {
	// Two minutes of trace, stride-sampled to 2,000 invocations: on 8
	// cores that is ~2x overload, the consolidation regime the paper
	// studies (thousands of functions packed per machine).
	invs, err := faassched.BuildWorkload(faassched.WorkloadSpec{
		Minutes:        2,
		MaxInvocations: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d invocations\n\n", len(invs))

	for _, sched := range []faassched.Scheduler{
		faassched.SchedulerCFS,
		faassched.SchedulerFIFO,
		faassched.SchedulerHybrid,
	} {
		res, err := faassched.Simulate(faassched.Options{
			Cores:     8,
			Scheduler: sched,
		}, invs)
		if err != nil {
			log.Fatal(err)
		}
		exec, err := res.CDF(faassched.Execution)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := res.CDF(faassched.Response)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s exec p50=%9.1fms | resp p99=%10.1fms | preempts=%6d | cost(1GB)=$%.6f\n",
			sched, exec.Quantile(0.5), resp.Quantile(0.99),
			res.Preemptions, res.CostAtUniformMemoryUSD(1024))
	}

	fmt.Println("\nCFS time-slices thousands of short functions, inflating their")
	fmt.Println("billed execution time (note the exec p50 multiple); the hybrid")
	fmt.Println("runs short functions to completion on a FIFO core group and moves")
	fmt.Println("only the long tail to CFS cores — a fraction of CFS's cost, at")
	fmt.Println("better response time than FIFO.")
}
