// Custom policy: the paper argues ghOSt-style delegation makes scheduler
// research cheap — "others could design and further experiment with
// (multi-level) scheduling using ghOSt". This example does exactly that:
// it implements SRTF (shortest remaining time first, the policy the SFS
// system approximates) in ~60 lines against the ghost.Policy interface
// and races it against the paper's hybrid.
//
// It reaches below the public facade into the delegation layer on
// purpose — that layer is the extension point the paper advertises.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/faassched/faassched"
	"github.com/faassched/faassched/internal/ghost"
	"github.com/faassched/faassched/internal/metrics"
	"github.com/faassched/faassched/internal/queue"
	"github.com/faassched/faassched/internal/simkern"
	"github.com/faassched/faassched/internal/workload"
)

// srtf is a centralized, preemptive shortest-remaining-time-first policy.
type srtf struct {
	env *ghost.Env
	h   *queue.Heap[*simkern.Task]
}

func newSRTF() *srtf {
	return &srtf{}
}

func (p *srtf) Name() string { return "srtf" }

func (p *srtf) Attach(env *ghost.Env) {
	p.env = env
	p.h = queue.NewHeap[*simkern.Task](func(a, b *simkern.Task) bool {
		ra, rb := a.Remaining(), b.Remaining()
		if ra != rb {
			return ra < rb
		}
		return a.ID < b.ID
	})
}

func (p *srtf) OnMessage(m ghost.Message) {
	switch m.Type {
	case ghost.MsgTaskNew:
		p.h.Push(m.Task)
		p.dispatch()
		p.maybePreempt()
	case ghost.MsgTaskDead:
		p.dispatch()
	}
}

func (p *srtf) dispatch() {
	for c := simkern.CoreID(0); int(c) < p.env.Cores(); c++ {
		if p.h.Len() == 0 {
			return
		}
		if p.env.RunningTask(c) != nil {
			continue
		}
		t, _ := p.h.Peek()
		if p.env.CommitRun(c, t) == nil {
			p.h.Pop()
		}
	}
}

// maybePreempt displaces the runner with the most remaining work if the
// shortest queued task beats it.
func (p *srtf) maybePreempt() {
	next, ok := p.h.Peek()
	if !ok {
		return
	}
	victim := simkern.NoCore
	var worst time.Duration
	for c := simkern.CoreID(0); int(c) < p.env.Cores(); c++ {
		t := p.env.RunningTask(c)
		if t == nil {
			return // dispatch covers idle cores
		}
		if rem := t.Remaining(); victim == simkern.NoCore || rem > worst {
			victim, worst = c, rem
		}
	}
	if victim == simkern.NoCore || next.Remaining() >= worst {
		return
	}
	if got, err := p.env.CommitPreempt(victim); err == nil {
		p.h.Push(got)
		p.dispatch()
	}
}

func main() {
	invs, err := faassched.BuildWorkload(faassched.WorkloadSpec{
		Minutes:        2,
		MaxInvocations: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run the custom policy on the raw substrate.
	kernel, err := simkern.New(simkern.DefaultConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ghost.NewEnclave(kernel, newSRTF(), ghost.Config{}); err != nil {
		log.Fatal(err)
	}
	for _, t := range workload.Tasks(invs) {
		if err := kernel.AddTask(t); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := kernel.Run(0); err != nil {
		log.Fatal(err)
	}
	srtfSet := metrics.Collect(kernel)

	// And the paper's hybrid through the facade for comparison.
	hybrid, err := faassched.Simulate(faassched.Options{Cores: 8}, invs)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, set metrics.Set) {
		exec, err := set.CDF(metrics.Execution)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := set.CDF(metrics.Response)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s exec p99=%10.1fms | resp p99=%10.1fms | preemptions=%d\n",
			name, exec.Quantile(0.99), resp.Quantile(0.99), set.TotalPreemptions())
	}
	show("srtf", srtfSet)
	show("hybrid", hybrid.Set)

	fmt.Println("\nSRTF holds an oracle the hybrid does not assume — exact service")
	fmt.Println("demands — and buys better execution tails with it, while the")
	fmt.Println("hybrid's FIFO front-end still answers faster. Sixty lines against")
	fmt.Println("the delegation API is all a new policy costs; this is the")
	fmt.Println("experimentation loop the paper wants to enable.")
}
