package faassched

// Observability invariants at the facade level (DESIGN.md §13):
//
//  1. Trace determinism — the trace is a function of simulated state
//     only, so the same run produces the same multiset of event lines at
//     any shard count and through either dataflow. Lines are compared
//     sorted because shard workers emit concurrently.
//  2. Inertness — enabling observation (or passing a zero Obs) changes
//     no simulated decision: digests with obs off, obs zero, and obs
//     fully on are identical.

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"github.com/faassched/faassched/internal/obs"
)

// obsWorkload is a small fixed workload for the obs matrix.
func obsWorkload(t *testing.T) []Invocation {
	t.Helper()
	invs, err := BuildWorkload(WorkloadSpec{Seed: 1, Minutes: 1, MaxInvocations: 300})
	if err != nil {
		t.Fatal(err)
	}
	return invs
}

// sortedTrace returns the trace's event lines sorted, dropping the
// fixed header/footer framing.
func sortedTrace(t *testing.T, buf *bytes.Buffer) []string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short: %d lines", len(lines))
	}
	body := lines[1 : len(lines)-2] // strip {"traceEvents":[ … metadata, ]}
	sort.Strings(body)
	return body
}

// traceCluster runs the fixed fleet with tracing on and returns the
// sorted event lines.
func traceCluster(t *testing.T, invs []Invocation, shards int, streamed bool) []string {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, obs.TraceConfig{Segments: true})
	_, err := SimulateCluster(ClusterOptions{
		Servers: 3, CoresPerServer: 4, Scheduler: SchedulerHybrid, Seed: 1,
		Shards: shards, Streamed: streamed,
		Obs: &obs.Obs{Trace: tr},
	}, invs)
	if err != nil {
		t.Fatalf("cluster shards=%d streamed=%t: %v", shards, streamed, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return sortedTrace(t, &buf)
}

// traceSharded runs the lockstep sharded replay with tracing on and
// returns the sorted event lines.
func traceSharded(t *testing.T, invs []Invocation, shards int) []string {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, obs.TraceConfig{Segments: true})
	_, err := SimulateShardedReplay(ClusterOptions{
		Servers: 3, CoresPerServer: 4, Scheduler: SchedulerHybrid, Seed: 1,
		Shards: shards,
		Obs:    &obs.Obs{Trace: tr},
	}, SliceSource(invs))
	if err != nil {
		t.Fatalf("sharded shards=%d: %v", shards, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return sortedTrace(t, &buf)
}

func diffLines(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d trace lines, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: sorted trace line %d differs:\n  got  %s\n  want %s",
				label, i, got[i], want[i])
		}
	}
}

// TestTraceDeterministicAcrossShards pins the trace-export determinism
// claim: the same run at shards {1,3,7}, through both fleet dataflows
// and the sharded lockstep replay, produces byte-identical sorted trace
// output.
func TestTraceDeterministicAcrossShards(t *testing.T) {
	invs := obsWorkload(t)

	ref := traceCluster(t, invs, 1, false)
	if len(ref) == 0 {
		t.Fatal("reference trace is empty")
	}
	for _, shards := range []int{1, 3, 7} {
		for _, streamed := range []bool{false, true} {
			if shards == 1 && !streamed {
				continue
			}
			got := traceCluster(t, invs, shards, streamed)
			label := "cluster/materialized"
			if streamed {
				label = "cluster/streamed"
			}
			diffLines(t, label, ref, got)
		}
	}

	// The sharded replay adds router watermark events, so it earns its
	// own reference — invariant across its shard counts.
	sref := traceSharded(t, invs, 1)
	for _, shards := range []int{3, 7} {
		diffLines(t, "sharded", sref, traceSharded(t, invs, shards))
	}

	// Every emitted line (comma-terminated event) must be valid JSON.
	for _, line := range ref[:min(len(ref), 50)] {
		var ev map[string]any
		if err := json.Unmarshal([]byte(strings.TrimSuffix(line, ",")), &ev); err != nil {
			t.Fatalf("trace line is not valid JSON: %v\n  %s", err, line)
		}
	}
}

// TestObsDisabledIsInert pins the other half of the invariant: a nil
// Obs, a zero Obs (allocated but all facilities off), and a fully
// enabled Obs all produce identical simulated results.
func TestObsDisabledIsInert(t *testing.T) {
	invs := obsWorkload(t)

	run := func(o *obs.Obs) string {
		t.Helper()
		res, err := Simulate(Options{Cores: 8, Scheduler: SchedulerHybrid, Obs: o}, invs)
		if err != nil {
			t.Fatal(err)
		}
		return digestResult(res)
	}
	runCluster := func(o *obs.Obs) string {
		t.Helper()
		res, err := SimulateCluster(ClusterOptions{
			Servers: 3, CoresPerServer: 4, Scheduler: SchedulerHybrid, Seed: 1, Obs: o,
		}, invs)
		if err != nil {
			t.Fatal(err)
		}
		return digestCluster(res)
	}

	enabled := func() *obs.Obs {
		return &obs.Obs{
			Counters: obs.NewRegistry(),
			Trace:    obs.NewTracer(&bytes.Buffer{}, obs.TraceConfig{Segments: true}),
			Prog:     &obs.Progress{},
		}
	}

	if off, zero := run(nil), run(&obs.Obs{}); off != zero {
		t.Errorf("zero Obs changed the single-machine digest: %.12s… vs %.12s…", zero, off)
	} else if on := run(enabled()); on != off {
		t.Errorf("enabled Obs changed the single-machine digest: %.12s… vs %.12s…", on, off)
	}
	if off, zero := runCluster(nil), runCluster(&obs.Obs{}); off != zero {
		t.Errorf("zero Obs changed the cluster digest: %.12s… vs %.12s…", zero, off)
	} else if on := runCluster(enabled()); on != off {
		t.Errorf("enabled Obs changed the cluster digest: %.12s… vs %.12s…", on, off)
	}
}
