package faassched

// Fault-injection determinism and inertness (DESIGN.md §14). Two claims
// carry the feature: (1) the fault seam is inert — threading it with
// every rate zero (Instrument) reproduces the fault-free byte stream —
// and (2) a non-empty plan is deterministic ACROSS dataflows: the flat
// streamed fleet and the sharded replay at any shard count derive the
// identical crash/straggler/retry timeline, because every hazard draw is
// a pure function of (fault seed, server index) and crash sweeps enter
// the kernel under the dedicated fault ordering class.

import (
	"testing"
	"time"
)

// crashPlan is the non-empty reference plan: crashes, timeouts, and
// retries all active, sized so the 1-minute golden workload sees several
// crash windows per server.
func crashPlan() FaultOptions {
	return FaultOptions{
		Seed:      5,
		CrashMTBF: 20 * time.Second,
		Downtime:  4 * time.Second,
		Timeout:   15 * time.Second,
		Retry:     RetryOptions{MaxAttempts: 3},
	}
}

// TestFaultsDisabledIsInert: Instrument threads machines, routing hooks,
// and the streamed dataflow with every rate zero; the record stream must
// be bit-identical to the plain fault-free run and all fault counters
// zero.
func TestFaultsDisabledIsInert(t *testing.T) {
	t.Parallel()
	invs := goldenWorkload(t)
	for _, sched := range []Scheduler{SchedulerHybrid, SchedulerCFS} {
		base := ClusterOptions{
			Servers: 3, CoresPerServer: 4, Dispatch: DispatchLeastLoaded,
			Scheduler: sched, Seed: 1, Streamed: true,
		}
		plain, err := SimulateCluster(base, invs)
		if err != nil {
			t.Fatalf("%s plain: %v", sched, err)
		}
		base.Faults = FaultOptions{Instrument: true}
		seamed, err := SimulateCluster(base, invs)
		if err != nil {
			t.Fatalf("%s instrumented: %v", sched, err)
		}
		if a, b := digestCluster(plain), digestCluster(seamed); a != b {
			t.Errorf("%s: instrumented seam diverges from plain run:\n  plain %.12s…\n  seam  %.12s…", sched, a, b)
		}
		if seamed.Faults != (FaultStats{}) {
			t.Errorf("%s: inert seam counted faults: %+v", sched, seamed.Faults)
		}
	}
}

// TestFaultDeterminismAcrossShards: with a non-empty crash+timeout+retry
// plan, the flat fleet and the sharded fleet at shard counts 1, 3, and 7
// must produce identical record streams — and the plan must actually
// fire (crashes, kills, retries, give-ups all nonzero) or the equality
// proves nothing.
func TestFaultDeterminismAcrossShards(t *testing.T) {
	t.Parallel()
	invs := goldenWorkload(t)
	for _, sched := range []Scheduler{SchedulerHybrid, SchedulerCFS} {
		opts := ClusterOptions{
			Servers: 3, CoresPerServer: 4, Dispatch: DispatchLeastLoaded,
			Scheduler: sched, Seed: 1, Faults: crashPlan(),
		}
		flat, err := SimulateCluster(opts, invs)
		if err != nil {
			t.Fatalf("%s flat: %v", sched, err)
		}
		if flat.Faults.Crashes == 0 || flat.Faults.Kills == 0 || flat.Faults.Retries == 0 {
			t.Fatalf("%s: plan never fired: %+v", sched, flat.Faults)
		}
		// Every routed invocation retires exactly one final record:
		// completed, or Failed when the retry budget ran out.
		if len(flat.Set.Records) != len(invs) {
			t.Errorf("%s: %d final records for %d invocations", sched, len(flat.Set.Records), len(invs))
		}
		want := digestCluster(flat)
		for _, shards := range []int{1, 3, 7} {
			opts.Shards, opts.Workers = shards, 2
			res, err := SimulateCluster(opts, invs)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", sched, shards, err)
			}
			if got := digestCluster(res); got != want {
				t.Errorf("%s shards=%d: digest %.12s… != flat %.12s…", sched, shards, got, want)
			}
			if res.Faults != flat.Faults {
				t.Errorf("%s shards=%d: fault stats %+v != flat %+v", sched, shards, res.Faults, flat.Faults)
			}
		}
		opts.Shards, opts.Workers = 0, 0
	}
}

// TestStragglerDeterminismAcrossShards: straggler-only plans (no kills,
// so they run under any scheduler — FIFO included) must also agree
// between flat and sharded, with the slowdown demonstrably applied.
func TestStragglerDeterminismAcrossShards(t *testing.T) {
	t.Parallel()
	invs := goldenWorkload(t)
	plan := FaultOptions{
		Seed:              5,
		StragglerMTBF:     15 * time.Second,
		StragglerDuration: 10 * time.Second,
		StragglerFactor:   4,
	}
	opts := ClusterOptions{
		Servers: 3, CoresPerServer: 4, Dispatch: DispatchRoundRobin,
		Scheduler: SchedulerFIFO, Seed: 1, Faults: plan,
	}
	flat, err := SimulateCluster(opts, invs)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Faults.StragglerWindows == 0 {
		t.Fatal("no straggler windows entered")
	}
	// The slowdown must be visible: same fleet without the plan finishes
	// strictly sooner in total execution.
	opts2 := opts
	opts2.Faults = FaultOptions{}
	clean, err := SimulateCluster(opts2, invs)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Set.TotalExecution() <= clean.Set.TotalExecution() {
		t.Errorf("straggled execution %v not above clean %v", flat.Set.TotalExecution(), clean.Set.TotalExecution())
	}
	want := digestCluster(flat)
	for _, shards := range []int{1, 3, 7} {
		opts.Shards, opts.Workers = shards, 2
		res, err := SimulateCluster(opts, invs)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := digestCluster(res); got != want {
			t.Errorf("shards=%d: digest %.12s… != flat %.12s…", shards, got, want)
		}
	}
}

// TestShardedReplayFaultStats: the windowed sharded replay reports the
// same fault counters as the exact sharded fleet on the same plan.
func TestShardedReplayFaultStats(t *testing.T) {
	t.Parallel()
	invs := goldenWorkload(t)
	opts := ClusterOptions{
		Servers: 3, CoresPerServer: 4, Dispatch: DispatchLeastLoaded,
		Scheduler: SchedulerHybrid, Seed: 1, Faults: crashPlan(),
	}
	flat, err := SimulateCluster(opts, invs)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards, opts.Workers, opts.MetricsWindow = 3, 2, 10*time.Second
	rep, err := SimulateShardedReplay(opts, SliceSource(invs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != flat.Faults {
		t.Errorf("replay fault stats %+v != cluster %+v", rep.Faults, flat.Faults)
	}
	if got, want := rep.Total().Completed()+rep.Total().FailedCount(), len(invs); got != want {
		t.Errorf("replay retired %d records, want %d", got, want)
	}
	if rep.Total().GiveUps() != int(flat.Faults.GiveUps) {
		t.Errorf("replay accumulator give-ups %d != stats %d", rep.Total().GiveUps(), flat.Faults.GiveUps)
	}
}

// TestFaultsRejectNonEvictingKillPlans: crash/timeout plans need the
// scheduler to implement task eviction; round-robin does not, and the
// run must say so instead of silently dropping kills.
func TestFaultsRejectNonEvictingKillPlans(t *testing.T) {
	t.Parallel()
	invs := goldenWorkload(t)
	_, err := SimulateCluster(ClusterOptions{
		Servers: 2, CoresPerServer: 4, Dispatch: DispatchRoundRobin,
		Scheduler: SchedulerRR, Seed: 1, Faults: crashPlan(),
	}, invs)
	if err == nil {
		t.Error("kill plan accepted under a scheduler with no task eviction")
	}
}

// TestAutoscaleCrashRecovery: terminal crash mode — a crashed server is
// retired at its crash instant, its residents are killed and retried
// elsewhere, a cold replacement launches, and every routed invocation
// still retires exactly one final record. Run twice for determinism.
func TestAutoscaleCrashRecovery(t *testing.T) {
	t.Parallel()
	invs := goldenWorkload(t)
	opts := AutoscaleOptions{
		MinServers: 2, MaxServers: 4, CoresPerServer: 4,
		Dispatch: DispatchLeastLoaded, Scheduler: SchedulerHybrid, Seed: 1,
		SpinUp: 2 * time.Second, ScalePolicy: ScaleQueueDepth,
		Faults: FaultOptions{
			Seed:      5,
			CrashMTBF: 25 * time.Second,
			Timeout:   15 * time.Second,
			Retry:     RetryOptions{MaxAttempts: 3},
		},
	}
	run := func() *AutoscaleStats {
		t.Helper()
		stats, err := SimulateAutoscaled(opts, SliceSource(invs))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a := run()
	if a.Crashed == 0 {
		t.Fatalf("no server crashed under MTBF %v (faults: %+v)", opts.Faults.CrashMTBF, a.Faults)
	}
	if a.Faults.Kills == 0 || a.Faults.Retries == 0 {
		t.Errorf("crash fired but recovery did not: %+v", a.Faults)
	}
	if got, want := a.Completed+a.Failed, len(invs); got != want {
		t.Errorf("retired %d records (completed %d + failed %d), want %d", got, a.Completed, a.Failed, want)
	}
	if a.Launched <= opts.MinServers && a.Crashed > 0 {
		t.Errorf("crashed %d servers but only launched %d — no replacement", a.Crashed, a.Launched)
	}
	b := run()
	if a.Summary() != b.Summary() || a.Crashed != b.Crashed || a.Faults != b.Faults {
		t.Errorf("autoscaled crash run not deterministic:\n  %s (crashed=%d %+v)\n  %s (crashed=%d %+v)",
			a.Summary(), a.Crashed, a.Faults, b.Summary(), b.Crashed, b.Faults)
	}
}

// TestAutoscaleRejectsStragglers: the terminal-mode autoscaler supports
// crash/timeout/retry only; straggler plans must be rejected up front.
func TestAutoscaleRejectsStragglers(t *testing.T) {
	t.Parallel()
	_, err := SimulateAutoscaled(AutoscaleOptions{
		MinServers: 1, MaxServers: 2, CoresPerServer: 4,
		Scheduler: SchedulerHybrid,
		Faults:    FaultOptions{StragglerMTBF: time.Minute},
	}, SliceSource(nil))
	if err == nil {
		t.Error("straggler plan accepted by the autoscaler")
	}
}

// BenchmarkFaultyReplay drives the streamed fleet under the full
// crash+timeout+retry plan — the bench_smoke.sh regression row for the
// fault layer's hot paths (fault timers, sweep kills, re-admission).
func BenchmarkFaultyReplay(b *testing.B) {
	invs, err := BuildWorkload(WorkloadSpec{Seed: 1, Minutes: 2})
	if err != nil {
		b.Fatal(err)
	}
	opts := ClusterOptions{
		Servers: 8, CoresPerServer: 8, Dispatch: DispatchLeastLoaded,
		Scheduler: SchedulerHybrid, Seed: 1,
		Faults: FaultOptions{
			Seed:      3,
			CrashMTBF: 30 * time.Second,
			Downtime:  5 * time.Second,
			Timeout:   20 * time.Second,
			Retry:     RetryOptions{MaxAttempts: 3},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *ClusterResult
	for i := 0; i < b.N; i++ {
		res, err := SimulateCluster(opts, invs)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Faults.Kills), "kills/run")
	b.ReportMetric(float64(last.Faults.Retries), "retries/run")
}
