#!/bin/sh
# CI guard for the observability rig (DESIGN.md §13): runs the small
# sharded-replay case with tracing and the run report enabled, then
# validates that both artifacts are well-formed —
#
#   * the trace file parses as Chrome trace-event JSON with a non-empty
#     traceEvents array (loadable in Perfetto), and
#   * the run report parses with the required keys (tool, mode,
#     wall_seconds, events, counters, per_shard) and a per-shard entry
#     for each of the 3 shards.
#
# The golden-digest tests prove observation is inert; this proves the
# enabled path actually produces consumable output end to end.
set -e
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
trace="$tmpdir/trace.json"
report="$tmpdir/report.json"

go run ./cmd/clustersim -sharded -servers 6 -shards 3 -workers 2 \
  -minutes 2 -n 3000 -shard-window 30s \
  -trace-out "$trace" -run-report "$report"

python3 - "$trace" "$report" <<'EOF'
import json, sys

trace_path, report_path = sys.argv[1], sys.argv[2]

with open(trace_path) as f:
    trace = json.load(f)
events = trace.get("traceEvents")
assert isinstance(events, list) and events, "traceEvents missing or empty"
phases = {e.get("ph") for e in events}
assert "X" in phases, f"no complete (ph=X) spans in trace: {phases}"
print(f"obs_smoke: trace OK ({len(events)} events)")

with open(report_path) as f:
    report = json.load(f)
for key in ("tool", "mode", "wall_seconds", "events", "counters", "per_shard"):
    assert key in report, f"run report missing {key!r}: {sorted(report)}"
assert report["tool"] == "clustersim", report["tool"]
assert report["mode"] == "sharded", report["mode"]
assert report["events"] > 0, "no kernel events reported"
assert len(report["per_shard"]) == 3, report["per_shard"]
assert report["counters"].get("kern.events_scheduled", 0) > 0, report["counters"]
print(f"obs_smoke: run report OK (events={report['events']}, "
      f"shards={len(report['per_shard'])}, counters={len(report['counters'])})")
EOF
