#!/bin/sh
# Regenerates BENCH_baseline.json: the repo's recorded performance
# trajectory. Run from the repo root on an otherwise idle machine.
#
#   ./scripts/bench_baseline.sh            # rewrite BENCH_baseline.json
#   ./scripts/bench_baseline.sh /dev/stdout  # print without rewriting
#
# The set below pairs the substrate micro-benchmarks (dispatch mechanism,
# end-to-end CFS event throughput, workload pipeline, facade) with a few
# figure benchmarks as end-to-end sentinels. Figure benchmarks run 1
# iteration (they simulate whole experiments); micro-benchmarks use the
# default 1s benchtime.
set -e
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_baseline.json}"

MICRO='BenchmarkKernelDispatch$|BenchmarkCFSSimulation$|BenchmarkWorkloadBuild$|BenchmarkFacadeSimulate|BenchmarkColdStartDispatch'
FIGS='BenchmarkFig06Hybrid$|BenchmarkTable1Summary$|BenchmarkFig13Preemptions$|BenchmarkStreamedFullscale'

{
  go test -run '^$' -bench "$MICRO" -benchmem .
  go test -run '^$' -bench "$FIGS" -benchtime 1x -benchmem .
} | go run ./cmd/benchfmt > "$OUT"
echo "wrote $OUT" >&2
