#!/bin/sh
# Regenerates BENCH_baseline.json: the repo's recorded performance
# trajectory. Run from the repo root on an otherwise idle machine.
#
#   ./scripts/bench_baseline.sh            # rewrite BENCH_baseline.json
#   ./scripts/bench_baseline.sh /dev/stdout  # print without rewriting
#
# The set below pairs the substrate micro-benchmarks (dispatch mechanism,
# end-to-end CFS event throughput, workload pipeline, facade) with a few
# figure benchmarks as end-to-end sentinels, plus the sharded-fleet group:
# the provider-scale replay (including the 24 h ×10 cases at 1,000 and
# 10,000 servers, gated behind FAASSCHED_BIGBENCH and minutes-to-hours
# of wall time) and the parallel sweep runner. Figure and sharded benchmarks run 1 iteration
# (they simulate whole experiments); micro-benchmarks use the default 1s
# benchtime.
set -e
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_baseline.json}"

MICRO='BenchmarkKernelDispatch$|BenchmarkCFSSimulation$|BenchmarkWorkloadBuild$|BenchmarkFacadeSimulate|BenchmarkColdStartDispatch'
FIGS='BenchmarkFig06Hybrid$|BenchmarkTable1Summary$|BenchmarkFig13Preemptions$|BenchmarkStreamedFullscale'

# The CI-sized sharded rows run 3 iterations (mean-of-3) because
# scripts/bench_smoke.sh diffs their ns/op against this file with the
# same protocol — single iterations of multi-second benchmarks are too
# noisy on shared hardware to gate on. The 24 h case stays 1 iteration.
{
  go test -run '^$' -bench "$MICRO" -benchmem .
  # Fixed-b.N protocol shared with scripts/bench_smoke.sh: the pick
  # stream is deterministic, so a pinned iteration count times the
  # identical instruction stream on both sides of the diff.
  go test -run '^$' -bench 'BenchmarkDispatchPick' -benchtime 2000000x -benchmem -timeout 20m .
  go test -run '^$' -bench "$FIGS" -benchtime 1x -benchmem .
  go test -run '^$' -bench 'BenchmarkShardedFleetReplay/100servers_x1_2h$' -benchtime 3x -benchmem -timeout 20m .
  go test -run '^$' -bench 'BenchmarkSweepRunner$' -benchtime 3x -benchmem -timeout 20m .
  go test -run '^$' -bench 'BenchmarkFaultyReplay$' -benchtime 3x -benchmem -timeout 20m .
  FAASSCHED_BIGBENCH=1 go test -run '^$' -bench 'BenchmarkShardedFleetReplay/1000servers_x10_24h$' -benchtime 1x -benchmem -timeout 45m .
  FAASSCHED_BIGBENCH=1 go test -run '^$' -bench 'BenchmarkShardedFleetReplay/10000servers_x10_24h$' -benchtime 1x -benchmem -timeout 3h .
} | go run ./cmd/benchfmt > "$OUT"
echo "wrote $OUT" >&2
