#!/bin/sh
# CI guards for the simulator's performance substrate.
#
# Gate 1 — tick-elision (DESIGN.md §9): runs BenchmarkCFSSimulation once
# and fails if its events/run metric climbs back above a generous
# ceiling — i.e. if a change accidentally reintroduces the
# every-boundary tick pump. The elided kernel runs the 500-task
# benchmark in ~4k events; the naive pump needs ~137k; the default
# ceiling of 40000 leaves ~10x headroom for legitimate workload or
# policy changes while still catching a pump regression outright.
#
# Gate 2 — sharded-fleet regression (DESIGN.md §11): reruns the small
# sharded-replay and sweep-runner benchmarks plus the per-arrival
# dispatch-pick micro-benchmark (DESIGN.md §12 — the load index must
# keep picks flat in fleet size) and the fault-injected replay
# (DESIGN.md §14 — crash sweeps, timeouts, and retry re-admission must
# stay off the simulator's hot paths) and diffs their ns/op against the
# committed BENCH_baseline.json via benchfmt -diff, failing on any
# regression beyond MAXPCT percent. The 24 h ×10 replays are excluded
# here — their baseline rows show up in the diff as "only in old
# baseline", which the gate ignores. Both sides use
# mean-of-3 iterations (bench_baseline.sh records the same protocol);
# even so, multi-second timings on shared hardware drift, so the
# threshold catches algorithmic regressions (a lost merge tree, an
# accidental O(servers) scan per event), not percent-level drift — on a
# noisy box pass a looser second argument.
#
# Gate 3 — obs-disabled zero-alloc (DESIGN.md §13): asserts every
# BenchmarkDispatchPick row reports allocs/op == 0, pinning the
# observability seams' inertness guarantee at the allocation level.
#
#   ./scripts/bench_smoke.sh              # default ceiling + 20% gate
#   ./scripts/bench_smoke.sh 60000 35     # custom ceiling, 35% gate
set -e
cd "$(dirname "$0")/.."
CEILING="${1:-40000}"
MAXPCT="${2:-20}"

out=$(go test -run '^$' -bench 'BenchmarkCFSSimulation$' -benchtime 1x .)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk -v ceiling="$CEILING" '
  /^BenchmarkCFSSimulation/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "events/run") v = $i
  }
  END {
    if (v == "") { print "bench_smoke: no events/run metric found"; exit 1 }
    if (v + 0 > ceiling + 0) {
      printf "bench_smoke: events/run %s exceeds ceiling %s — tick pump regression?\n", v, ceiling
      exit 1
    }
    printf "bench_smoke: events/run %s within ceiling %s\n", v, ceiling
  }'

if [ ! -f BENCH_baseline.json ]; then
  echo "bench_smoke: BENCH_baseline.json missing; skipping sharded regression gate" >&2
  exit 0
fi

# Fixed iteration count for DispatchPick: the pick stream is
# deterministic, so pinning b.N makes both sides of the diff time the
# identical instruction stream (default benchtime varies b.N and with
# it the ramp-up vs steady-state mix, which swamps the gate on sub-µs
# rows). Captured separately because the output also feeds gate 3.
dispatch=$(go test -run '^$' -bench 'BenchmarkDispatchPick' -benchtime 2000000x -timeout 20m .)

# Gate 3 — obs-disabled zero-alloc (DESIGN.md §13): with no Obs wired
# in, the hot dispatch path must not allocate. Every DispatchPick row
# reports allocs/op (b.ReportAllocs); any nonzero value means an obs
# seam leaked an allocation onto the per-arrival path.
printf '%s\n' "$dispatch" | awk '
  /^BenchmarkDispatchPick/ {
    allocs = ""
    for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") allocs = $i
    if (allocs == "") { printf "bench_smoke: %s reports no allocs/op\n", $1; exit 1 }
    n++
    if (allocs + 0 != 0) {
      printf "bench_smoke: %s allocs/op=%s, want 0 — obs-disabled hot path allocates\n", $1, allocs
      bad = 1
    }
  }
  END {
    if (n == 0) { print "bench_smoke: no DispatchPick rows for zero-alloc gate"; exit 1 }
    if (bad) exit 1
    printf "bench_smoke: %d DispatchPick rows allocation-free (obs-disabled zero-alloc gate)\n", n
  }'

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
{
  go test -run '^$' -bench 'BenchmarkShardedFleetReplay/100servers_x1_2h$' -benchtime 3x -timeout 20m .
  go test -run '^$' -bench 'BenchmarkSweepRunner$' -benchtime 3x -timeout 20m .
  go test -run '^$' -bench 'BenchmarkFaultyReplay$' -benchtime 3x -timeout 20m .
  printf '%s\n' "$dispatch"
} | go run ./cmd/benchfmt > "$tmp"

# Diff lines look like:
#   BenchmarkShardedFleetReplay/100servers_x1_2h-8      <- header, no indent
#     ns/op        3849812345 -> 3901234567  (+1.3%)    <- metric, indented
# Headers for benchmarks present on only one side carry no metric lines.
go run ./cmd/benchfmt -diff BENCH_baseline.json "$tmp" | awk -v max="$MAXPCT" '
  /^[^ ]/ { bench = $1 }
  $1 == "ns/op" && bench ~ /^Benchmark(ShardedFleetReplay|SweepRunner|DispatchPick|FaultyReplay)/ {
    pct = $NF
    gsub(/[()%+]/, "", pct)
    # Sub-µs DispatchPick rows see ±30% scheduler-steal noise even at a
    # pinned b.N; a lost index shows up as +100× at 10k servers, so a
    # doubled threshold loses no detection power.
    lim = (bench ~ /DispatchPick/) ? max * 2 : max
    printf "bench_smoke: %-55s ns/op %+.1f%% (max +%s%%)\n", bench, pct, lim
    n++
    if (pct + 0 > lim + 0) bad = 1
  }
  END {
    if (n == 0) { print "bench_smoke: no sharded ns/op deltas in diff — baseline stale?"; exit 1 }
    if (bad) { print "bench_smoke: sharded benchmark regressed beyond threshold"; exit 1 }
    printf "bench_smoke: %d sharded ns/op deltas within threshold\n", n
  }'
