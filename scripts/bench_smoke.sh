#!/bin/sh
# CI guard for the tick-elision event kernel (DESIGN.md §9): runs
# BenchmarkCFSSimulation once and fails if its events/run metric climbs
# back above a generous ceiling — i.e. if a change accidentally
# reintroduces the every-boundary tick pump. The elided kernel runs the
# 500-task benchmark in ~4k events; the naive pump needs ~137k; the
# default ceiling of 40000 leaves ~10x headroom for legitimate workload
# or policy changes while still catching a pump regression outright.
#
#   ./scripts/bench_smoke.sh          # default ceiling
#   ./scripts/bench_smoke.sh 60000    # custom ceiling
set -e
cd "$(dirname "$0")/.."
CEILING="${1:-40000}"

out=$(go test -run '^$' -bench 'BenchmarkCFSSimulation$' -benchtime 1x .)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk -v ceiling="$CEILING" '
  /^BenchmarkCFSSimulation/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "events/run") v = $i
  }
  END {
    if (v == "") { print "bench_smoke: no events/run metric found"; exit 1 }
    if (v + 0 > ceiling + 0) {
      printf "bench_smoke: events/run %s exceeds ceiling %s — tick pump regression?\n", v, ceiling
      exit 1
    }
    printf "bench_smoke: events/run %s within ceiling %s\n", v, ceiling
  }'
